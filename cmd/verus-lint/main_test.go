package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
)

// TestRepoIsLintClean is the acceptance smoke test: the full analyzer suite
// over the whole module must report nothing. Every suppression in the tree
// is therefore a reviewed //lint: directive with a justification.
func TestRepoIsLintClean(t *testing.T) {
	var out bytes.Buffer
	count, err := Lint(&out, "../..", []string{"./..."}, all.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if count != 0 {
		t.Fatalf("repo has %d lint violation(s):\n%s", count, out.String())
	}
}

// TestLintFlagsViolations proves the binary's failure path end-to-end: a
// scratch module with one wall-clock read in a simulation-named package
// must yield a non-zero diagnostic count.
func TestLintFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("netsim/clock.go", `package netsim

import "time"

func Now() time.Time { return time.Now() }
`)
	write("netsim/rand.go", `package netsim

import "math/rand"

func Draw() float64 { return rand.Float64() }
`)
	var out bytes.Buffer
	count, err := Lint(&out, dir, []string{"./..."}, all.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (nowalltime + noglobalrand); output:\n%s", count, out.String())
	}
	for _, wantSub := range []string{"[nowalltime]", "[noglobalrand]"} {
		if !bytes.Contains(out.Bytes(), []byte(wantSub)) {
			t.Errorf("output missing %s:\n%s", wantSub, out.String())
		}
	}
}

// TestLintErrorOnBadPattern pins the operational-error path (exit 2 in the
// binary): an unloadable pattern is an error, not a clean run.
func TestLintErrorOnBadPattern(t *testing.T) {
	var out bytes.Buffer
	if _, err := Lint(&out, "../..", []string{"./does-not-exist/..."}, all.Analyzers()); err == nil {
		t.Fatal("expected error for nonexistent package pattern")
	}
}

// TestRunReportsTiming: Run must return one timing entry per analyzer, in
// suite order, so -timing and the CI job summary can print them without
// re-deriving the suite.
func TestRunReportsTiming(t *testing.T) {
	res, err := Run("../..", []string{"./internal/analysis/load"}, all.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	suite := all.Analyzers()
	if len(res.Timing) != len(suite) {
		t.Fatalf("timing entries = %d, want %d", len(res.Timing), len(suite))
	}
	for i, a := range suite {
		if res.Timing[i].Name != a.Name {
			t.Errorf("timing[%d] = %s, want %s (suite order)", i, res.Timing[i].Name, a.Name)
		}
	}
}

// TestSARIFOutput runs the suite over a scratch module with one known
// violation and checks the SARIF report parses, carries every analyzer as
// a rule (plus the directive pseudo-analyzer), and locates the result.
func TestSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "netsim"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package netsim\n\nimport \"time\"\n\nfunc Now() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(dir, "netsim", "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(dir, []string{"./..."}, all.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, res.Fset, all.Analyzers(), res.Diags); err != nil {
		t.Fatalf("write sarif: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("sarif output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if got, want := len(run.Tool.Driver.Rules), len(all.Analyzers())+1; got != want {
		t.Errorf("rules = %d, want %d (suite + directive)", got, want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1 (the wall-clock read):\n%s", len(run.Results), buf.String())
	}
	r := run.Results[0]
	if r.RuleID != "nowalltime" || r.Level != "error" {
		t.Errorf("result = %s/%s, want nowalltime/error", r.RuleID, r.Level)
	}
	loc := r.Locations[0].PhysicalLocation
	if !strings.HasSuffix(loc.ArtifactLocation.URI, "netsim/clock.go") || loc.Region.StartLine != 5 {
		t.Errorf("location = %s:%d, want .../netsim/clock.go:5", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

// TestExitCodeClassification pins the exit-status mapping the fuzz
// target (FuzzDirectiveParser) relies on: ordinary violations exit 1,
// malformed //lint: directives rank as configuration errors and exit 2.
func TestExitCodeClassification(t *testing.T) {
	ordinary := []analysis.Diagnostic{{Analyzer: "nowalltime", Message: "x"}}
	if got := exitCode(ordinary); got != 1 {
		t.Errorf("exitCode(violations) = %d, want 1", got)
	}
	mixed := append(ordinary, analysis.Diagnostic{Analyzer: "directive", Message: "malformed"})
	if got := exitCode(mixed); got != 2 {
		t.Errorf("exitCode(with malformed directive) = %d, want 2", got)
	}
}

// TestDocCommentListsAllAnalyzers keeps the package doc comment in sync
// with all.Analyzers(): the comment's analyzer list is regenerated by
// hand whenever the suite changes, and this test is what notices a stale
// one (the bug this suite's own history includes).
func TestDocCommentListsAllAnalyzers(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(src[:bytes.Index(src, []byte("package main"))])
	for _, a := range all.Analyzers() {
		if !strings.Contains(doc, a.Name) {
			t.Errorf("main.go doc comment does not mention analyzer %q; regenerate the list from all.Analyzers()", a.Name)
		}
	}
	if !strings.Contains(doc, "directive") {
		t.Error("main.go doc comment does not mention the directive pseudo-analyzer")
	}
}
