// Command verus-client runs the UDP sender side of the Verus transport: a
// full-buffer flow driven by a chosen congestion controller, reporting rate
// and RTT while it runs.
//
// -debug-addr starts an HTTP introspection server: Prometheus text
// exposition of the sender's live counters (plus the controller's, when it
// is observable — Verus is) at /metrics, and the standard net/http/pprof
// handlers under /debug/pprof/.
//
// Usage:
//
//	verus-client -server 127.0.0.1:9000 -proto verus -r 2 -dur 30s
//	             [-debug-addr 127.0.0.1:6061]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/sprout"
	"repro/internal/tcp"
	"repro/internal/transport"
	"repro/internal/verus"
)

func controller(proto string, r float64) (cc.Controller, error) {
	switch strings.ToLower(proto) {
	case "verus":
		cfg := verus.DefaultConfig()
		cfg.R = r
		return verus.New(cfg), nil
	case "cubic":
		return tcp.NewCubic(), nil
	case "newreno", "reno":
		return tcp.NewNewReno(), nil
	case "vegas":
		return tcp.NewVegas(), nil
	case "sprout":
		return sprout.New(sprout.DefaultConfig()), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", proto)
	}
}

func main() {
	server := flag.String("server", "127.0.0.1:9000", "server UDP address")
	proto := flag.String("proto", "verus", "verus|cubic|newreno|vegas|sprout")
	r := flag.Float64("r", 2, "Verus R parameter")
	dur := flag.Duration("dur", 30*time.Second, "transfer duration")
	report := flag.Duration("report", 2*time.Second, "stats report interval")
	debugAddr := flag.String("debug-addr", "", "serve Prometheus /metrics and /debug/pprof on this HTTP address (empty disables)")
	flag.Parse()

	ctrl, err := controller(*proto, *r)
	if err != nil {
		log.Fatal(err)
	}
	cfg := transport.DefaultSenderConfig()
	if *debugAddr != "" {
		registry := obs.NewRegistry()
		// Dial registers the sender's counters and attaches the controller
		// when it is observable.
		cfg.Obs = obs.NewObserver(nil, registry)
		http.Handle("/metrics", obs.MetricsHandler(registry))
		go func() {
			fmt.Printf("debug server (pprof + /metrics) on http://%s\n", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, nil))
		}()
	}
	s, err := transport.Dial(*server, ctrl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verus-client: %s -> %s for %v\n", ctrl.Name(), *server, *dur)

	deadline := time.After(*dur)
	ticker := time.NewTicker(*report)
	defer ticker.Stop()
	var lastAcked int64
	start := time.Now()
	for {
		select {
		case <-ticker.C:
			st := s.Stats()
			rate := float64(st.Acked-lastAcked) * 1400 * 8 / report.Seconds() / 1e6
			lastAcked = st.Acked
			fmt.Printf("tx: sent=%d acked=%d retx=%d loss=%d to=%d  %.2f Mbps  rtt p50=%.1fms p95=%.1fms\n",
				st.Sent, st.Acked, st.Retransmits, st.Losses, st.Timeouts,
				rate, st.RTT.Median()*1000, st.RTT.Percentile(95)*1000)
		case <-deadline:
			if err := s.Close(); err != nil {
				log.Fatal(err)
			}
			st := s.Stats()
			elapsed := time.Since(start).Seconds()
			fmt.Printf("done: %d acked (%.2f Mbps goodput), rtt mean %.1f ms\n",
				st.Acked, float64(st.Acked)*1400*8/elapsed/1e6, st.RTT.Mean()*1000)
			return
		}
	}
}
