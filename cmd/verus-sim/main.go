// Command verus-sim runs one simulated scenario: N flows of a chosen
// congestion controller over either a synthetic cellular channel or a fixed
// link, and prints per-flow throughput/delay.
//
// Usage:
//
//	verus-sim -proto verus -flows 4 -tech 3g -scenario city-driving -dur 60s
//	verus-sim -proto cubic -fixed 20 -dur 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/experiments"
)

func maker(proto string, r float64) (experiments.Maker, error) {
	switch strings.ToLower(proto) {
	case "verus":
		return experiments.VerusMaker(r), nil
	case "cubic":
		return experiments.CubicMaker(), nil
	case "newreno", "reno":
		return experiments.NewRenoMaker(), nil
	case "vegas":
		return experiments.VegasMaker(), nil
	case "sprout":
		return experiments.SproutMaker(), nil
	default:
		return experiments.Maker{}, fmt.Errorf("unknown protocol %q (verus|cubic|newreno|vegas|sprout)", proto)
	}
}

func scenario(name string) (cellular.Scenario, error) {
	for _, s := range cellular.Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range cellular.Scenarios() {
		names = append(names, s.Name)
	}
	return cellular.Scenario{}, fmt.Errorf("unknown scenario %q (one of %s)", name, strings.Join(names, ", "))
}

func main() {
	proto := flag.String("proto", "verus", "congestion controller: verus|cubic|newreno|vegas|sprout")
	r := flag.Float64("r", 2, "Verus R parameter")
	flows := flag.Int("flows", 1, "number of flows")
	tech := flag.String("tech", "3g", "cellular technology: 3g|lte")
	scName := flag.String("scenario", "campus-stationary", "mobility scenario")
	mbps := flag.Float64("mbps", 0, "cell mean rate override (Mbps, 0 = tech default)")
	fixed := flag.Float64("fixed", 0, "use a fixed link at this rate (Mbps) instead of a cellular trace")
	queue := flag.Int("queue", 2_000_000, "bottleneck buffer (bytes)")
	red := flag.Bool("red", false, "use the paper's RED queue instead of DropTail")
	dur := flag.Duration("dur", 60*time.Second, "run duration")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	mk, err := maker(*proto, *r)
	if err != nil {
		log.Fatal(err)
	}

	var res experiments.RunResult
	if *fixed > 0 {
		res = experiments.FixedRun{
			RateMbps: *fixed, Maker: mk, Flows: *flows,
			Duration: *dur, QueueBytes: *queue, Seed: *seed,
		}.Run()
	} else {
		sc, err := scenario(*scName)
		if err != nil {
			log.Fatal(err)
		}
		t := cellular.Tech3G
		if strings.EqualFold(*tech, "lte") {
			t = cellular.TechLTE
		}
		model := cellular.NewModel(cellular.Config{Tech: t, Scenario: sc, MeanMbps: *mbps, Seed: *seed})
		tr := model.Trace(*dur)
		fmt.Printf("channel: %s, mean %.2f Mbps over %v\n", tr.Name, tr.MeanMbps(), *dur)
		res = experiments.TraceRun{
			Trace: tr, Maker: mk, Flows: *flows,
			Duration: *dur, QueueBytes: *queue, UseRED: *red, Seed: *seed,
		}.Run()
	}

	fmt.Printf("%-6s %12s %14s %14s %8s %9s\n", "flow", "tput (Mbps)", "delay avg (ms)", "delay p95 (ms)", "losses", "timeouts")
	for _, f := range res.Flows {
		fmt.Printf("%-6d %12.2f %14.0f %14.0f %8d %9d\n",
			f.Flow, f.Mbps, f.DelayMean*1000, f.DelayP95*1000, f.Losses, f.Timeouts)
	}
	fmt.Printf("mean: %.2f Mbps @ %.0f ms\n", res.MeanMbps(), res.MeanDelay()*1000)
}
