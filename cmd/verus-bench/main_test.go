package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseOnlyAcceptsKnownIDs(t *testing.T) {
	want, err := parseOnly("fig8, TABLE1 ,sensitivity")
	if err != nil {
		t.Fatalf("parseOnly: %v", err)
	}
	for _, id := range []string{"fig8", "table1", "sensitivity"} {
		if !want[id] {
			t.Errorf("id %q not selected: %v", id, want)
		}
	}
	if len(want) != 3 {
		t.Errorf("selected %d ids, want 3: %v", len(want), want)
	}
}

func TestParseOnlyEmptySelectsAll(t *testing.T) {
	want, err := parseOnly("")
	if err != nil {
		t.Fatalf("parseOnly(\"\"): %v", err)
	}
	if len(want) != 0 {
		t.Errorf("empty -only must yield the empty (= all) set, got %v", want)
	}
}

func TestParseOnlyRejectsTypoBeforeAnyWork(t *testing.T) {
	// The original bug: "fig8,figure9" ran fig8 to completion before the
	// typo was reported. parseOnly must fail up front instead.
	_, err := parseOnly("fig8,figure9")
	if err == nil {
		t.Fatal("typo id accepted")
	}
	if !strings.Contains(err.Error(), `"figure9"`) {
		t.Errorf("error does not name the bad id: %v", err)
	}
	if !strings.Contains(err.Error(), "fig15") {
		t.Errorf("error does not list known ids: %v", err)
	}
}

func TestMarshalReportShape(t *testing.T) {
	r := benchReport{
		GoVersion:  "go1.22",
		GOMAXPROCS: 8,
		Quick:      true,
		Seed:       42,
		Parallel:   8,
		Harnesses: []harnessTiming{
			{ID: "fig8", Seconds: 1.5},
			{ID: "fig9", Seconds: 0.25},
		},
		TotalSeconds: 1.75,
	}
	b, err := marshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, frag := range []string{`"go_version"`, `"harnesses"`, `"id": "fig8"`, `"total_seconds"`, `"parallel": 8`} {
		if !strings.Contains(s, frag) {
			t.Errorf("report JSON missing %s:\n%s", frag, s)
		}
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("report JSON must end with a newline")
	}
}

func TestParseFaults(t *testing.T) {
	if got, err := parseFaults(""); err != nil || got != nil {
		t.Errorf("parseFaults(\"\") = %v, %v; want nil, nil", got, err)
	}
	all, err := parseFaults("ALL")
	if err != nil || len(all) != 3 {
		t.Errorf("parseFaults(\"ALL\") = %v, %v; want the 3 canned scenarios", all, err)
	}
	one, err := parseFaults(" tunnel-outage ")
	if err != nil || len(one) != 1 || one[0] != "tunnel-outage" {
		t.Errorf("parseFaults(\"tunnel-outage\") = %v, %v", one, err)
	}
	// A typo must fail before any experiment runs, like -only.
	if _, err := parseFaults("tunel-outage"); err == nil {
		t.Error("typo scenario accepted")
	} else if !strings.Contains(err.Error(), "highway-handover") {
		t.Errorf("error does not list valid scenarios: %v", err)
	}
}

func TestKnownExperimentsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range knownExperiments() {
		if seen[id] {
			t.Errorf("duplicate id %q", id)
		}
		seen[id] = true
	}
	if !seen["fig1"] || !seen["sensitivity"] || !seen["predictors"] {
		t.Errorf("known set incomplete: %v", knownExperiments())
	}
}

func TestOpenObsOutputsValidatesUpFront(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.jsonl")
	promPath := filepath.Join(dir, "m.prom")
	files, err := openObsOutputs(tracePath, "", promPath)
	if err != nil {
		t.Fatalf("openObsOutputs: %v", err)
	}
	if files.trace == nil || files.metrics == nil || files.chrome != nil {
		t.Fatalf("wrong slots opened: %+v", files)
	}
	files.trace.Close()
	files.metrics.Close()
	for _, p := range []string{tracePath, promPath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("output %s not created up front: %v", p, err)
		}
	}

	// A bad path must fail before any experiment runs (main exits 2 on it),
	// and the error must name the flag.
	_, err = openObsOutputs(filepath.Join(dir, "no/such/dir/t.jsonl"), "", "")
	if err == nil {
		t.Fatal("unwritable -trace path accepted")
	}
	if !strings.Contains(err.Error(), "-trace") {
		t.Errorf("error does not name the flag: %v", err)
	}
	_, err = openObsOutputs("", filepath.Join(dir, "no/such/dir/c.json"), "")
	if err == nil || !strings.Contains(err.Error(), "-chrometrace") {
		t.Errorf("unwritable -chrometrace path: err = %v", err)
	}
	_, err = openObsOutputs("", "", filepath.Join(dir, "no/such/dir/m.prom"))
	if err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Errorf("unwritable -metrics path: err = %v", err)
	}
}

func TestWriteObsOutputsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracer := obs.NewTracer(16)
	tracer.Emit(obs.Event{At: time.Millisecond, Kind: obs.KindVerusEpoch, Run: 3, V0: 0.1, V1: 0.05, V2: 12, V3: 4})
	registry := obs.NewRegistry()
	registry.Counter("verus_epochs_total").Inc()

	files, err := openObsOutputs(
		filepath.Join(dir, "t.jsonl"), filepath.Join(dir, "c.json"), filepath.Join(dir, "m.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeObsOutputs(files, tracer, registry); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, "t.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("exported trace does not round-trip: %v", err)
	}
	if len(events) != 1 || events[0].Kind != obs.KindVerusEpoch {
		t.Errorf("round-tripped events = %+v", events)
	}

	mf, err := os.Open(filepath.Join(dir, "m.prom"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	m, err := obs.ParsePrometheus(mf)
	if err != nil {
		t.Fatalf("exported metrics do not round-trip: %v", err)
	}
	if m.Values["verus_epochs_total"] != 1 {
		t.Errorf("metrics values = %v", m.Values)
	}

	chrome, err := os.ReadFile(filepath.Join(dir, "c.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(chrome), "[") || !strings.HasSuffix(string(chrome), "]\n") {
		t.Errorf("Chrome trace is not a JSON array:\n%s", chrome)
	}
}
