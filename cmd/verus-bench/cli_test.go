package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// CLI-level checkpoint/resume contract: flag validation exits 2 before any
// work, a bad snapshot fails a resume closed with exit 2, and the
// crash-injection harness — SIGKILL a child mid-metro-run, resume from its
// last checkpoint — reproduces the uninterrupted run byte-for-byte.

var benchBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "verus-bench-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	benchBin = filepath.Join(dir, "verus-bench")
	// The children deliberately run without -race instrumentation: they are
	// separate processes exercising the CLI surface, not this test binary.
	if out, err := exec.Command("go", "build", "-o", benchBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building verus-bench: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// runBench runs the built binary and returns stdout, stderr, and the exit
// code (-1 if killed by a signal).
func runBench(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(benchBin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestFlagValidationExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"shards-without-metro", []string{"-shards", "2"}},
		{"churn-without-metro", []string{"-churn", "0.1"}},
		{"checkpoint-without-metro", []string{"-checkpoint", "snap.bin"}},
		{"resume-without-metro", []string{"-resume", "snap.bin"}},
		{"crash-after-without-metro", []string{"-crash-after", "1"}},
		{"resume-with-shards", []string{"-metro", "-resume", "snap.bin", "-shards", "2"}},
		{"resume-with-churn", []string{"-metro", "-resume", "snap.bin", "-churn", "0.2"}},
		{"crash-after-without-checkpoint", []string{"-metro", "-crash-after", "1"}},
		{"checkpoint-every-zero", []string{"-metro", "-checkpoint", "snap.bin", "-checkpoint-every", "0s"}},
		{"shards-below-range", []string{"-metro", "-shards", "-2"}},
		{"churn-above-range", []string{"-metro", "-churn", "1.5"}},
		{"unknown-only", []string{"-only", "fig99"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runBench(t, tc.args...)
			if code != 2 {
				t.Fatalf("args %v: exit code %d, want 2 (stderr: %s)", tc.args, code, stderr)
			}
			if !strings.Contains(stderr, "verus-bench:") {
				t.Errorf("args %v: stderr has no diagnostic: %q", tc.args, stderr)
			}
			if strings.Contains(stdout, "====") {
				t.Errorf("args %v: an experiment ran before validation: %q", tc.args, stdout)
			}
		})
	}
}

func TestResumeFromBadSnapshotExitsTwo(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(garbage, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, path := range map[string]string{
		"garbage": garbage,
		"missing": filepath.Join(dir, "absent.bin"),
	} {
		stdout, stderr, code := runBench(t, "-quick", "-metro", "-resume", path)
		if code != 2 {
			t.Fatalf("%s snapshot: exit code %d, want 2 (stderr: %s)", name, code, stderr)
		}
		if !strings.Contains(stderr, "verus-bench: metro:") {
			t.Errorf("%s snapshot: stderr lacks the metro diagnostic: %q", name, stderr)
		}
		if strings.Contains(stdout, "flows") {
			t.Errorf("%s snapshot: partial resume produced output: %q", name, stdout)
		}
	}
}

// metroRender extracts the metro section of a verus-bench stdout.
func metroRender(t *testing.T, stdout string) string {
	t.Helper()
	_, rest, ok := strings.Cut(stdout, "==== METRO")
	if !ok {
		t.Fatalf("no metro section in output:\n%s", stdout)
	}
	_, rest, ok = strings.Cut(rest, "\n")
	if !ok {
		t.Fatalf("truncated metro header in output:\n%s", stdout)
	}
	render, _, ok := strings.Cut(rest, "[metro took")
	if !ok {
		t.Fatalf("no metro footer in output:\n%s", stdout)
	}
	return render
}

func TestCrashInjectionResumeMatchesStraightRun(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness runs three quick metro sweeps")
	}
	straightOut, stderr, code := runBench(t, "-quick", "-metro", "-seed", "7")
	if code != 0 {
		t.Fatalf("straight run failed with %d: %s", code, stderr)
	}
	want := metroRender(t, straightOut)

	snapPath := filepath.Join(t.TempDir(), "crash.bin")
	cmd := exec.Command(benchBin, "-quick", "-metro", "-seed", "7",
		"-checkpoint", snapPath, "-checkpoint-every", "2s", "-crash-after", "2")
	var crashOut strings.Builder
	cmd.Stdout = &crashOut
	cmd.Stderr = &crashOut
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("crash run did not die: err=%v output=%s", err, crashOut.String())
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash run died of %v, want SIGKILL", ee)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("crashed run left no checkpoint: %v", err)
	}

	resumeOut, stderr, code := runBench(t, "-quick", "-metro", "-seed", "7", "-resume", snapPath)
	if code != 0 {
		t.Fatalf("resume after crash failed with %d: %s", code, stderr)
	}
	if got := metroRender(t, resumeOut); got != want {
		t.Errorf("resume after SIGKILL diverges from the uninterrupted run:\n-- straight --\n%s\n-- resumed --\n%s", want, got)
	}
}
