// Command verus-bench regenerates every table and figure of the Verus paper
// (Zaki et al., SIGCOMM 2015) and prints the same rows/series the paper
// reports. Use -quick for a reduced-scale pass (seconds per experiment) or
// the default full scale (the paper's durations; minutes in total).
//
// Independent trials (reps × protocols × cells × scenarios) run on a worker
// pool sized by -parallel; output is byte-identical at every setting, and
// -parallel 1 reproduces the serial path.
//
// -benchjson writes per-harness wall-times to a JSON file, the format the
// repo's BENCH_*.json perf-trajectory files use; -cpuprofile/-memprofile
// write pprof profiles of the run for local hot-path work.
//
// -faults runs the canned fault-injection scenarios (internal/faults)
// against the hardened Verus and the baselines: pass a scenario name
// (tunnel-outage, highway-handover, city-loss) or "all". With -faults set
// and no -only, only the fault scenarios run.
//
// -metro runs the city-scale multi-cell sweep (internal/experiments.Metro):
// N cell sectors on a sharded event mesh, swept over {10k, 40k, 100k}
// concurrent Verus/Cubic/Sprout flows, rendering per-cell fairness and
// aggregate delay CDFs. It is opt-in (also reachable as -only metro) because
// the full sweep runs for minutes; -quick reduces it to one 64-flow point.
// -shards picks the mesh executor (0 = single-heap reference); -churn sets
// the fraction of users that arrive and depart mid-run (default 0.3 at full
// scale, 0 on -quick); every setting renders byte-identical output.
//
// -checkpoint writes a versioned, CRC-trailed snapshot of the in-flight
// metro trial to a file at every -checkpoint-every of virtual time (each
// write lands at a quiescent mesh barrier and atomically replaces the file),
// and -resume restores an interrupted sweep from such a file and runs it to
// completion — rendering byte-identical output to a run that was never
// interrupted. Both require -metro; -resume rejects -shards/-churn because
// the snapshot fixes the topology, and a truncated, corrupted, wrong-version,
// or mismatched-config snapshot fails closed with exit 2 before any state is
// touched. -crash-after N SIGKILLs the process right after the Nth
// checkpoint write; it exists for the crash-injection harness, which kills a
// child mid-sweep and verifies the resumed digest.
//
// -trace, -chrometrace, and -metrics attach the internal/obs observability
// layer: -trace writes the virtual-time event stream as JSONL, -chrometrace
// writes the same stream in Chrome trace_event format (load in
// chrome://tracing or Perfetto), and -metrics writes the metrics registry
// as Prometheus text exposition. Observability is strictly passive —
// enabling it never changes a rendered table (the golden-digest tests lock
// this in). Output paths are validated up front, before any experiment
// runs.
//
// Usage:
//
//	verus-bench [-quick] [-only fig8,table1,...] [-faults name|all] [-seed N]
//	            [-metro] [-shards N] [-churn F] [-parallel N] [-benchjson out.json]
//	            [-checkpoint snap.bin] [-checkpoint-every D] [-resume snap.bin]
//	            [-crash-after N]
//	            [-trace out.jsonl] [-chrometrace out.json] [-metrics out.prom]
//	            [-tracecap N]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
)

// knownExperiments lists every -only id, in run order.
func knownExperiments() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "predictors", "fig5", "fig7", "fig8",
		"fig9", "fig10", "table1", "fig11", "fig12", "fig13", "fig14", "fig15", "sensitivity",
		"faults", "metro"}
}

// parseFaults validates the -faults flag value into the scenario list to
// run: "" selects nothing, "all" selects every canned scenario, and a
// single name selects that one. Unknown names error with the valid set.
func parseFaults(s string) ([]string, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch s {
	case "":
		return nil, nil
	case "all":
		return faults.Names(), nil
	}
	if _, err := faults.ByName(s, time.Second); err != nil {
		return nil, err
	}
	return []string{s}, nil
}

// parseOnly parses a -only flag value into the selected id set, rejecting
// unknown ids (the first unknown one in input order is reported). An empty
// value selects everything via the callers' "empty set = all" convention.
func parseOnly(s string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, k := range knownExperiments() {
		known[k] = true
	}
	want := map[string]bool{}
	for _, id := range strings.Split(s, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		if !known[id] {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)",
				id, strings.Join(knownExperiments(), ","))
		}
		want[id] = true
	}
	return want, nil
}

// harnessTiming is one harness's wall time within a bench report.
type harnessTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// benchReport is the -benchjson output: enough run metadata to make the
// numbers comparable across commits, plus per-harness wall times. The
// committed BENCH_*.json trajectory files embed reports of this shape.
type benchReport struct {
	GoVersion    string          `json:"go_version"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Quick        bool            `json:"quick"`
	Seed         int64           `json:"seed"`
	Parallel     int             `json:"parallel"`
	Harnesses    []harnessTiming `json:"harnesses"`
	TotalSeconds float64         `json:"total_seconds"`
}

// marshalReport renders the report as indented JSON with a trailing newline.
func marshalReport(r benchReport) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "verus-bench: "+format+"\n", args...)
	os.Exit(1)
}

// obsOutputs holds the pre-opened observability output files. Creating them
// before any experiment runs turns a bad path into an immediate exit 2
// instead of an error after a multi-minute run.
type obsOutputs struct {
	trace, chrome, metrics *os.File
}

// openObsOutputs creates each requested output file. An empty path leaves
// its slot nil.
func openObsOutputs(tracePath, chromePath, metricsPath string) (obsOutputs, error) {
	var out obsOutputs
	open := func(path, flagName string, dst **os.File) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s: %v", flagName, err)
		}
		*dst = f
		return nil
	}
	if err := open(tracePath, "-trace", &out.trace); err != nil {
		return out, err
	}
	if err := open(chromePath, "-chrometrace", &out.chrome); err != nil {
		return out, err
	}
	if err := open(metricsPath, "-metrics", &out.metrics); err != nil {
		return out, err
	}
	return out, nil
}

// writeObsOutputs exports the trace and registry into the pre-opened files.
func writeObsOutputs(files obsOutputs, tracer *obs.Tracer, registry *obs.Registry) error {
	export := func(f *os.File, what string, write func(*os.File) error) error {
		if f == nil {
			return nil
		}
		if err := write(f); err != nil {
			return fmt.Errorf("%s: %v", what, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("%s: %v", what, err)
		}
		return nil
	}
	var events []obs.Event
	if tracer != nil {
		events = tracer.Snapshot()
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf("[trace ring overflowed: %d oldest events dropped; raise -tracecap to keep them]\n", d)
		}
	}
	if err := export(files.trace, "-trace", func(f *os.File) error {
		if err := obs.WriteJSONL(f, events); err != nil {
			return err
		}
		fmt.Printf("[wrote %d trace events to %s]\n", len(events), f.Name())
		return nil
	}); err != nil {
		return err
	}
	if err := export(files.chrome, "-chrometrace", func(f *os.File) error {
		if err := obs.WriteChromeTrace(f, events); err != nil {
			return err
		}
		fmt.Printf("[wrote Chrome trace of %d events to %s]\n", len(events), f.Name())
		return nil
	}); err != nil {
		return err
	}
	return export(files.metrics, "-metrics", func(f *os.File) error {
		// Publish the ring-overflow count so the exposition itself records
		// whether the exported trace is complete (obs_trace_dropped_total).
		obs.NewObserver(tracer, registry).SyncTraceDropped()
		if err := obs.WritePrometheus(f, registry); err != nil {
			return err
		}
		fmt.Printf("[wrote metrics exposition to %s]\n", f.Name())
		return nil
	})
}

func main() {
	quick := flag.Bool("quick", false, "run at reduced scale")
	only := flag.String("only", "", "comma-separated experiment ids (fig1..fig15,predictors,table1,sensitivity,faults)")
	faultsFlag := flag.String("faults", "", "fault scenario to run (tunnel-outage, highway-handover, city-loss, or 'all'); alone it runs only the fault scenarios")
	metroFlag := flag.Bool("metro", false, "run the city-scale metro sweep (thousands of flows across sharded cell sectors); alone it runs only the metro sweep")
	shardsFlag := flag.Int("shards", -1, "metro mesh shard count (0 = single-heap reference executor, -1 = harness default)")
	churnFlag := flag.Float64("churn", -1, "metro user churn fraction in [0,1] (-1 = harness default; 0.3 on full runs, 0 on -quick)")
	checkpointFlag := flag.String("checkpoint", "", "metro: write a resumable snapshot to this file at every -checkpoint-every of virtual time (requires -metro)")
	checkpointEvery := flag.Duration("checkpoint-every", time.Second, "metro: virtual-time interval between -checkpoint snapshots")
	resumeFlag := flag.String("resume", "", "metro: resume an interrupted sweep from this snapshot file (requires -metro; the file fixes the topology)")
	crashAfter := flag.Int("crash-after", 0, "metro: kill the process with SIGKILL right after the Nth checkpoint write (crash-injection testing; requires -checkpoint)")
	seed := flag.Int64("seed", 42, "base random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "trial worker count (1 = serial)")
	benchjson := flag.String("benchjson", "", "write per-harness wall-times as JSON to this file")
	tracePath := flag.String("trace", "", "write the virtual-time event trace as JSONL to this file")
	chromePath := flag.String("chrometrace", "", "write the event trace in Chrome trace_event format to this file")
	metricsPath := flag.String("metrics", "", "write the metrics registry as Prometheus text exposition to this file")
	traceCap := flag.Int("tracecap", obs.DefaultTraceCapacity, "event ring capacity; oldest events are overwritten beyond it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	// Validate -only, -faults, and the observability output paths before any
	// experiment runs, so a typo costs nothing.
	want, err := parseOnly(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verus-bench: %v\n", err)
		os.Exit(2)
	}
	faultScenarios, err := parseFaults(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verus-bench: %v\n", err)
		os.Exit(2)
	}
	if *traceCap <= 0 {
		fmt.Fprintf(os.Stderr, "verus-bench: -tracecap must be positive (got %d)\n", *traceCap)
		os.Exit(2)
	}
	obsFiles, err := openObsOutputs(*tracePath, *chromePath, *metricsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "verus-bench: %v\n", err)
		os.Exit(2)
	}
	if len(faultScenarios) > 0 {
		// -faults alone narrows the run to the fault harness; combined with
		// -only it joins the selection.
		if len(want) == 0 {
			want = map[string]bool{}
		}
		want["faults"] = true
	} else {
		// "-only faults" (or a default full run) uses every canned scenario.
		faultScenarios = faults.Names()
	}
	if *shardsFlag < -1 {
		fmt.Fprintf(os.Stderr, "verus-bench: -shards must be >= -1 (got %d)\n", *shardsFlag)
		os.Exit(2)
	}
	if *churnFlag != -1 && (*churnFlag < 0 || *churnFlag > 1) {
		fmt.Fprintf(os.Stderr, "verus-bench: -churn must be in [0,1] or -1 for the default (got %v)\n", *churnFlag)
		os.Exit(2)
	}
	if *metroFlag {
		// Like -faults: alone it narrows the run to the metro sweep, with
		// -only it joins the selection.
		if len(want) == 0 {
			want = map[string]bool{}
		}
		want["metro"] = true
	}
	// The metro sweep is opt-in even on full runs — it is the one harness
	// whose default scale is an order of magnitude beyond the rest.
	metroSelected := want["metro"]

	// Metro-only flags outside a metro run are a usage error (exit 2, like
	// -only/-faults), not a silent no-op.
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"-shards", *shardsFlag >= 0},
		{"-churn", *churnFlag >= 0},
		{"-checkpoint", *checkpointFlag != ""},
		{"-resume", *resumeFlag != ""},
		{"-crash-after", *crashAfter > 0},
	} {
		if f.set && !metroSelected {
			fmt.Fprintf(os.Stderr, "verus-bench: %s only applies to the metro sweep; add -metro (or -only metro)\n", f.name)
			os.Exit(2)
		}
	}
	if *resumeFlag != "" && (*shardsFlag >= 0 || *churnFlag >= 0) {
		fmt.Fprintf(os.Stderr, "verus-bench: -resume restores the checkpointed topology; -shards/-churn conflict with it\n")
		os.Exit(2)
	}
	if *crashAfter > 0 && *checkpointFlag == "" {
		fmt.Fprintf(os.Stderr, "verus-bench: -crash-after requires -checkpoint\n")
		os.Exit(2)
	}
	if *checkpointFlag != "" && *checkpointEvery <= 0 {
		fmt.Fprintf(os.Stderr, "verus-bench: -checkpoint-every must be positive (got %v)\n", *checkpointEvery)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	macro := experiments.DefaultMacroOptions()
	micro := experiments.DefaultMicroOptions()
	fig2Dur := 5 * time.Minute
	fig7Dur := 200 * time.Second
	sensDur := 60 * time.Second
	if *quick {
		macro = experiments.QuickMacroOptions()
		micro = experiments.QuickMicroOptions()
		micro.Duration = 100 * time.Second
		fig2Dur = 45 * time.Second
		fig7Dur = 60 * time.Second
		sensDur = 20 * time.Second
	}
	metroOpts := experiments.DefaultMetroOptions()
	if *quick {
		metroOpts = experiments.QuickMetroOptions()
	}
	if *shardsFlag >= 0 {
		metroOpts.Shards = *shardsFlag
	}
	if *churnFlag >= 0 {
		metroOpts.ChurnFrac = *churnFlag
	}
	macro.Seed = *seed
	micro.Seed = *seed
	metroOpts.Seed = *seed
	metroOpts.CheckpointPath = *checkpointFlag
	if *checkpointFlag != "" {
		metroOpts.CheckpointEvery = *checkpointEvery
	}
	metroOpts.ResumeFrom = *resumeFlag
	if *crashAfter > 0 {
		n := *crashAfter
		metroOpts.CheckpointHook = func(ordinal int, path string) {
			if ordinal != n {
				return
			}
			// SIGKILL, not os.Exit: the crash harness wants the ungraceful
			// death a preempted worker actually suffers.
			p, err := os.FindProcess(os.Getpid())
			if err == nil {
				_ = p.Kill()
			}
		}
	}
	macro.Parallel = *parallel
	micro.Parallel = *parallel
	metroOpts.Parallel = *parallel

	// One observer serves the whole run: trials label their series by
	// derived seed and flow, so even a full parallel sweep shares it safely.
	var tracer *obs.Tracer
	var registry *obs.Registry
	if obsFiles.trace != nil || obsFiles.chrome != nil {
		tracer = obs.NewTracer(*traceCap)
	}
	if obsFiles.metrics != nil {
		registry = obs.NewRegistry()
	}
	var observer *obs.Observer
	if tracer != nil || registry != nil {
		observer = obs.NewObserver(tracer, registry)
	}
	macro.Obs = observer
	micro.Obs = observer
	metroOpts.Obs = observer

	sel := func(id string) bool { return len(want) == 0 || want[id] }

	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Seed:       *seed,
		Parallel:   *parallel,
	}

	run := func(id, note string, f func() string) {
		if !sel(id) {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s (%s) ====\n", strings.ToUpper(id), note)
		fmt.Println(f())
		elapsed := time.Since(start)
		fmt.Printf("[%s took %v]\n\n", id, elapsed.Round(time.Millisecond))
		report.Harnesses = append(report.Harnesses, harnessTiming{ID: id, Seconds: elapsed.Seconds()})
		report.TotalSeconds += elapsed.Seconds()
	}

	run("fig1", "LTE burst arrivals", func() string { return experiments.Figure1(*seed).Render() })
	run("fig2", "burst PDFs", func() string { return experiments.Figure2(fig2Dur, *seed, *parallel).Render() })
	run("fig3", "competing traffic", func() string { return experiments.Figure3(*seed, *parallel, observer).Render() })
	run("fig4", "windowed throughput", func() string { return experiments.Figure4(*seed).Render() })
	run("predictors", "§3 predictability", func() string { return experiments.PredictorStudy(*seed).Render() })
	run("fig5", "delay profile", func() string { return experiments.Figure5(*seed).Render() })
	run("fig7", "profile evolution", func() string { return experiments.Figure7(fig7Dur, *seed).Render() })
	run("fig8", "macro comparison", func() string { return experiments.Figure8(macro).Render() })
	run("fig9", "R sweep", func() string { return experiments.Figure9(macro).Render() })
	run("fig10", "trace-driven contention", func() string { return experiments.Figure10(macro).Render() })
	run("table1", "Jain fairness", func() string { return experiments.Table1(macro).Render() })
	run("fig11", "rapidly changing nets", func() string {
		return experiments.Figure11(micro, false).Render() + "\n" + experiments.Figure11(micro, true).Render()
	})
	run("fig12", "newly arriving flows", func() string { return experiments.Figure12(micro).Render() })
	run("fig13", "mixed RTTs", func() string { return experiments.Figure13(micro).Render() })
	run("fig14", "Verus vs Cubic", func() string { return experiments.Figure14(micro).Render() })
	run("fig15", "static vs updating profile", func() string { return experiments.Figure15(micro).Render() })
	run("sensitivity", "§5.3 parameters", func() string {
		return experiments.Sensitivity(sensDur, *seed, *parallel, observer).Render()
	})
	run("faults", "fault-injection scenarios", func() string {
		var b strings.Builder
		for i, name := range faultScenarios {
			res, err := experiments.FaultScenario(name, macro)
			if err != nil {
				fatalf("faults: %v", err)
			}
			if i > 0 {
				b.WriteByte('\n')
			}
			b.WriteString(res.Render())
		}
		return b.String()
	})
	if metroSelected {
		run("metro", "city-scale sharded multi-cell sweep", func() string {
			res, err := experiments.Metro(metroOpts)
			if err != nil {
				// A bad snapshot (truncated, corrupted, wrong version, or a
				// config mismatch) is a usage-class failure: fail closed
				// before any state is touched, exit 2 like flag validation.
				if *resumeFlag != "" || *checkpointFlag != "" {
					fmt.Fprintf(os.Stderr, "verus-bench: metro: %v\n", err)
					os.Exit(2)
				}
				fatalf("metro: %v", err)
			}
			return res.Render()
		})
	}

	if err := writeObsOutputs(obsFiles, tracer, registry); err != nil {
		fatalf("%v", err)
	}

	if *benchjson != "" {
		b, err := marshalReport(report)
		if err != nil {
			fatalf("benchjson: %v", err)
		}
		if err := os.WriteFile(*benchjson, b, 0o644); err != nil {
			fatalf("benchjson: %v", err)
		}
		fmt.Printf("[wrote %d harness timings to %s]\n", len(report.Harnesses), *benchjson)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
}
