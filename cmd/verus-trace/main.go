// Command verus-trace generates, inspects, and converts cellular channel
// traces.
//
// Usage:
//
//	verus-trace gen  -tech lte -scenario city-driving -dur 2m -out chan.trace
//	verus-trace info -in chan.trace [-window 100ms]
//	verus-trace conv -in chan.trace -out chan.mahi -format mahimahi
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "conv":
		conv(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: verus-trace gen|info|conv [flags]")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	tech := fs.String("tech", "3g", "3g|lte")
	op := fs.String("operator", "b", "a|b")
	scName := fs.String("scenario", "campus-stationary", "mobility scenario")
	mbps := fs.Float64("mbps", 0, "mean rate override (Mbps)")
	dur := fs.Duration("dur", time.Minute, "trace duration")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	var sc cellular.Scenario
	for _, s := range cellular.Scenarios() {
		if s.Name == *scName {
			sc = s
		}
	}
	if sc.Name == "" {
		log.Fatalf("unknown scenario %q", *scName)
	}
	cfg := cellular.Config{Scenario: sc, MeanMbps: *mbps, Seed: *seed}
	if strings.EqualFold(*tech, "lte") {
		cfg.Tech = cellular.TechLTE
	}
	if strings.EqualFold(*op, "a") {
		cfg.Operator = cellular.OperatorA
	} else {
		cfg.Operator = cellular.OperatorB
	}
	tr := cellular.NewModel(cfg).Trace(*dur)
	if *out == "" {
		if err := tr.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := tr.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d opportunities, %.2f Mbps mean over %v\n", *out, len(tr.Ops), tr.MeanMbps(), tr.Duration)
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	window := fs.Duration("window", 100*time.Millisecond, "throughput window")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("info: -in required")
	}
	tr, err := trace.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name: %s\nduration: %v\nopportunities: %d\nbytes: %d\nmean: %.3f Mbps\n",
		tr.Name, tr.Duration, len(tr.Ops), tr.TotalBytes(), tr.MeanMbps())
	sizes, gaps := cellular.BurstStats(tr, 200*time.Microsecond)
	var sMean float64
	for _, s := range sizes {
		sMean += s
	}
	if len(sizes) > 0 {
		sMean /= float64(len(sizes))
	}
	var gMean time.Duration
	for _, g := range gaps {
		gMean += g
	}
	if len(gaps) > 0 {
		gMean /= time.Duration(len(gaps))
	}
	fmt.Printf("bursts: %d (mean %.0f B, mean gap %v)\n", len(sizes), sMean, gMean)
	w := tr.WindowedMbps(*window)
	lo, hi := w[0], w[0]
	for _, v := range w {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Printf("windowed (%v): min %.2f, max %.2f Mbps over %d windows\n", *window, lo, hi, len(w))
}

func conv(args []string) {
	fs := flag.NewFlagSet("conv", flag.ExitOnError)
	in := fs.String("in", "", "input trace (CSV or mahimahi; auto-detected by -informat)")
	inFormat := fs.String("informat", "csv", "csv|mahimahi")
	out := fs.String("out", "", "output file (default stdout)")
	outFormat := fs.String("format", "mahimahi", "csv|mahimahi")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("conv: -in required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var tr *trace.Trace
	if *inFormat == "mahimahi" {
		tr, err = trace.ReadMahimahi(f)
	} else {
		tr, err = trace.Read(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if *outFormat == "mahimahi" {
		err = tr.WriteMahimahi(w)
	} else {
		err = tr.Write(w)
	}
	if err != nil {
		log.Fatal(err)
	}
}
