// Command verus-obs inspects and converts the observability artifacts that
// verus-bench (and the transport demos) write: JSONL event traces and
// Prometheus metric expositions.
//
// Subcommands:
//
//	verus-obs verify-trace <trace.jsonl>
//	    Strictly parse a JSONL event trace (unknown kinds, unknown fields,
//	    and malformed lines are errors) and print a summary: event count,
//	    virtual-time span, and per-kind totals. CI's trace-smoke step runs
//	    this against a fresh verus-bench -trace output.
//
//	verus-obs verify-metrics <metrics.prom>
//	    Strictly parse a Prometheus text exposition (every series needs a
//	    TYPE, duplicates are errors) and print family/series counts.
//
//	verus-obs chrome <trace.jsonl> <out.json>
//	    Convert a JSONL trace to Chrome trace_event format for
//	    chrome://tracing or Perfetto.
//
//	verus-obs attribute <trace.jsonl>
//	    Render the delay-budget report from the trace's net.attrib events:
//	    per flow class (run), each component's share of the mean one-way
//	    delay and its exact p95/p99. A trace with no attribution events is
//	    an error.
//
// Exit status: 0 on success, 1 on malformed input or I/O failure, 2 on
// usage errors.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage:
  verus-obs verify-trace <trace.jsonl>
  verus-obs verify-metrics <metrics.prom>
  verus-obs chrome <trace.jsonl> <out.json>
  verus-obs attribute <trace.jsonl>
`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; it is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "verify-trace":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return verifyTrace(args[1], stdout, stderr)
	case "verify-metrics":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return verifyMetrics(args[1], stdout, stderr)
	case "chrome":
		if len(args) != 3 {
			usage(stderr)
			return 2
		}
		return toChrome(args[1], args[2], stdout, stderr)
	case "attribute":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return attribute(args[1], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "verus-obs: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// readTrace strictly parses a JSONL trace file.
func readTrace(path string, stderr io.Writer) ([]obs.Event, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return nil, false
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", path, err)
		return nil, false
	}
	return events, true
}

func verifyTrace(path string, stdout, stderr io.Writer) int {
	events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "verus-obs: %s: trace is empty\n", path)
		return 1
	}
	var lo, hi time.Duration
	kinds := make(map[string]int)
	runs := make(map[int64]struct{})
	for i, e := range events {
		if i == 0 || e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
		kinds[e.Kind.String()]++
		runs[e.Run] = struct{}{}
	}
	fmt.Fprintf(stdout, "%s: %d events, %d runs, virtual time %v..%v\n",
		path, len(events), len(runs), lo, hi)
	// The tracer ring evicts oldest-first and Seq counts emissions from 0,
	// so the first retained sequence number IS the drop count. Surface a
	// truncated trace instead of silently verifying the survivors.
	if dropped := events[0].Seq; dropped > 0 {
		fmt.Fprintf(stdout, "WARNING: ring buffer overflow dropped the first %d events; the trace is truncated\n", dropped)
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(stdout, "  %-22s %d\n", k, kinds[k])
	}
	return 0
}

func verifyMetrics(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	defer f.Close()
	m, err := obs.ParsePrometheus(f)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", path, err)
		return 1
	}
	if len(m.Values) == 0 {
		fmt.Fprintf(stderr, "verus-obs: %s: exposition holds no series\n", path)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d series across %d families\n", path, len(m.Values), len(m.Types))
	return 0
}

// attrClass accumulates one flow class's (one run's) per-packet component
// samples for the delay-budget report.
type attrClass struct {
	run   int64
	comps [stats.NumDelayComps]*stats.Summary
	total *stats.Summary
}

func newAttrClass(run int64) *attrClass {
	c := &attrClass{run: run, total: stats.NewSummary(4096)}
	for i := range c.comps {
		c.comps[i] = stats.NewSummary(4096)
	}
	return c
}

// attribute renders the per-flow-class delay budget from a trace's
// net.attrib events: each component's share of the summed one-way delay and
// exact (sample, not bucket) p95/p99 per component.
func attribute(path string, stdout, stderr io.Writer) int {
	events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	classes := make(map[int64]*attrClass)
	var order []int64
	for _, e := range events {
		if e.Kind != obs.KindNetAttrib {
			continue
		}
		c := classes[e.Run]
		if c == nil {
			c = newAttrClass(e.Run)
			classes[e.Run] = c
			order = append(order, e.Run)
		}
		for i, v := range [stats.NumDelayComps]float64{e.V0, e.V1, e.V2, e.V3, e.V4} {
			c.comps[i].Add(v)
		}
		c.total.Add(e.V5)
	}
	if len(classes) == 0 {
		fmt.Fprintf(stderr, "verus-obs: %s: no net.attrib events; run the workload with sinks instrumented (verus-bench -trace)\n", path)
		return 1
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Fprintf(stdout, "%s: delay attribution across %d flow classes\n", path, len(order))
	for _, run := range order {
		c := classes[run]
		fmt.Fprintf(stdout, "run %d: %d packets, one-way mean %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
			run, c.total.N(), c.total.Mean()*1e3, c.total.Percentile(95)*1e3, c.total.Percentile(99)*1e3)
		fmt.Fprintf(stdout, "  %-8s %7s %10s %10s %10s\n", "comp", "share%", "mean(ms)", "p95(ms)", "p99(ms)")
		totalSum := c.total.Mean() * float64(c.total.N())
		for i := 0; i < stats.NumDelayComps; i++ {
			s := c.comps[i]
			share := 0.0
			if totalSum > 0 {
				share = s.Mean() * float64(s.N()) / totalSum * 100
			}
			fmt.Fprintf(stdout, "  %-8s %7.1f %10.3f %10.3f %10.3f\n",
				stats.DelayComp(i).String(), share, s.Mean()*1e3, s.Percentile(95)*1e3, s.Percentile(99)*1e3)
		}
	}
	return 0
}

func toChrome(inPath, outPath string, stdout, stderr io.Writer) int {
	events, ok := readTrace(inPath, stderr)
	if !ok {
		return 1
	}
	out, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	if err := obs.WriteChromeTrace(out, events); err != nil {
		out.Close()
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", outPath, err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote Chrome trace of %d events to %s\n", len(events), outPath)
	return 0
}
