// Command verus-obs inspects and converts the observability artifacts that
// verus-bench (and the transport demos) write: JSONL event traces and
// Prometheus metric expositions.
//
// Subcommands:
//
//	verus-obs verify-trace <trace.jsonl>
//	    Strictly parse a JSONL event trace (unknown kinds, unknown fields,
//	    and malformed lines are errors) and print a summary: event count,
//	    virtual-time span, and per-kind totals. CI's trace-smoke step runs
//	    this against a fresh verus-bench -trace output.
//
//	verus-obs verify-metrics <metrics.prom>
//	    Strictly parse a Prometheus text exposition (every series needs a
//	    TYPE, duplicates are errors) and print family/series counts.
//
//	verus-obs chrome <trace.jsonl> <out.json>
//	    Convert a JSONL trace to Chrome trace_event format for
//	    chrome://tracing or Perfetto.
//
// Exit status: 0 on success, 1 on malformed input or I/O failure, 2 on
// usage errors.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage:
  verus-obs verify-trace <trace.jsonl>
  verus-obs verify-metrics <metrics.prom>
  verus-obs chrome <trace.jsonl> <out.json>
`)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand; it is the testable core of the command.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "verify-trace":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return verifyTrace(args[1], stdout, stderr)
	case "verify-metrics":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		return verifyMetrics(args[1], stdout, stderr)
	case "chrome":
		if len(args) != 3 {
			usage(stderr)
			return 2
		}
		return toChrome(args[1], args[2], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "verus-obs: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

// readTrace strictly parses a JSONL trace file.
func readTrace(path string, stderr io.Writer) ([]obs.Event, bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return nil, false
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", path, err)
		return nil, false
	}
	return events, true
}

func verifyTrace(path string, stdout, stderr io.Writer) int {
	events, ok := readTrace(path, stderr)
	if !ok {
		return 1
	}
	if len(events) == 0 {
		fmt.Fprintf(stderr, "verus-obs: %s: trace is empty\n", path)
		return 1
	}
	var lo, hi time.Duration
	kinds := make(map[string]int)
	runs := make(map[int64]struct{})
	for i, e := range events {
		if i == 0 || e.At < lo {
			lo = e.At
		}
		if e.At > hi {
			hi = e.At
		}
		kinds[e.Kind.String()]++
		runs[e.Run] = struct{}{}
	}
	fmt.Fprintf(stdout, "%s: %d events, %d runs, virtual time %v..%v\n",
		path, len(events), len(runs), lo, hi)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(stdout, "  %-22s %d\n", k, kinds[k])
	}
	return 0
}

func verifyMetrics(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	defer f.Close()
	m, err := obs.ParsePrometheus(f)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", path, err)
		return 1
	}
	if len(m.Values) == 0 {
		fmt.Fprintf(stderr, "verus-obs: %s: exposition holds no series\n", path)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d series across %d families\n", path, len(m.Values), len(m.Types))
	return 0
}

func toChrome(inPath, outPath string, stdout, stderr io.Writer) int {
	events, ok := readTrace(inPath, stderr)
	if !ok {
		return 1
	}
	out, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	if err := obs.WriteChromeTrace(out, events); err != nil {
		out.Close()
		fmt.Fprintf(stderr, "verus-obs: %s: %v\n", outPath, err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintf(stderr, "verus-obs: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote Chrome trace of %d events to %s\n", len(events), outPath)
	return 0
}
