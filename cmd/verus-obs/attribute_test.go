package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeTrace serializes events to a temp JSONL file.
func writeTrace(t *testing.T, events []obs.Event) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAttributeReport(t *testing.T) {
	path := writeTrace(t, []obs.Event{
		{At: 100 * time.Millisecond, Seq: 0, Kind: obs.KindNetAttrib, Flow: 0, Run: 7,
			V0: 0.030, V1: 0.002, V2: 0.010, V3: 0, V4: 0, V5: 0.042},
		{At: 120 * time.Millisecond, Seq: 1, Kind: obs.KindNetAttrib, Flow: 1, Run: 7,
			V0: 0.010, V1: 0.002, V2: 0.010, V3: 0.050, V4: 0.008, V5: 0.080},
		{At: 130 * time.Millisecond, Seq: 2, Kind: obs.KindNetAttrib, Flow: 0, Run: 9,
			V0: 0.001, V1: 0.001, V2: 0.010, V3: 0, V4: 0, V5: 0.012},
		// Non-attribution events are ignored by the report.
		{At: 140 * time.Millisecond, Seq: 3, Kind: obs.KindNetDeliver, Flow: 0, Run: 7, V0: 1400, V1: 0.01},
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"attribute", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	s := out.String()
	for _, frag := range []string{
		"2 flow classes",
		"run 7: 2 packets",
		"run 9: 1 packets",
		"queue", "ser", "prop", "fault", "detour",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
	// Run 7's summed one-way delay is 122 ms of which fault is 50 ms: 41.0%.
	if !strings.Contains(s, "41.0") {
		t.Errorf("fault share 41.0%% missing from report:\n%s", s)
	}
	// Run 7's mean one-way delay is 61 ms.
	if !strings.Contains(s, "61.00 ms") {
		t.Errorf("run 7 mean 61.00 ms missing from report:\n%s", s)
	}
}

func TestAttributeRejectsTraceWithoutAttrib(t *testing.T) {
	path := writeTrace(t, []obs.Event{
		{At: 10 * time.Millisecond, Seq: 0, Kind: obs.KindNetDeliver, Flow: 0, Run: 7, V0: 1400, V1: 0.005},
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"attribute", path}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1 (stdout: %s)", code, out.String())
	}
	if !strings.Contains(errBuf.String(), "no net.attrib events") {
		t.Errorf("error does not explain the missing events: %s", errBuf.String())
	}
}

func TestVerifyTraceWarnsOnDrops(t *testing.T) {
	// Seq starts at 12: the ring evicted the first 12 events.
	path := writeTrace(t, []obs.Event{
		{At: 10 * time.Millisecond, Seq: 12, Kind: obs.KindNetDeliver, Flow: 0, Run: 7, V0: 1400, V1: 0.005},
		{At: 11 * time.Millisecond, Seq: 13, Kind: obs.KindNetDeliver, Flow: 0, Run: 7, V0: 1400, V1: 0.004},
	})
	var out, errBuf bytes.Buffer
	if code := run([]string{"verify-trace", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "WARNING") || !strings.Contains(out.String(), "12 events") {
		t.Errorf("drop warning missing:\n%s", out.String())
	}
	// A complete trace (Seq from 0) must not warn.
	clean := writeSampleTrace(t)
	out.Reset()
	if code := run([]string{"verify-trace", clean}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("complete trace warned spuriously:\n%s", out.String())
	}
}
