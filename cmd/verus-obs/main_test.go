package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeSampleTrace writes a small valid JSONL trace and returns its path.
func writeSampleTrace(t *testing.T) string {
	t.Helper()
	events := []obs.Event{
		{At: 10 * time.Millisecond, Seq: 0, Kind: obs.KindNetEnqueue, Flow: 0, Run: 7, V0: 1400, V1: 1, V2: 1400},
		{At: 15 * time.Millisecond, Seq: 1, Kind: obs.KindNetDeliver, Flow: 0, Run: 7, V0: 1400, V1: 0.005},
		{At: 20 * time.Millisecond, Seq: 2, Kind: obs.KindVerusEpoch, Flow: 0, Run: 7, V0: 0.05, V1: 0.04, V2: 30, V3: 12},
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyTraceAcceptsValid(t *testing.T) {
	path := writeSampleTrace(t)
	var out, errBuf bytes.Buffer
	if code := run([]string{"verify-trace", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	s := out.String()
	for _, frag := range []string{"3 events", "1 runs", "net.enqueue", "verus.epoch"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

func TestVerifyTraceRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.jsonl": "not json\n",
		"unknown.jsonl": `{"seq":0,"at_ns":1,"kind":"no.such.kind"}` + "\n",
		"extra.jsonl":   `{"seq":0,"at_ns":1,"kind":"net.drop","bogus":1}` + "\n",
		"empty.jsonl":   "",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errBuf bytes.Buffer
		if code := run([]string{"verify-trace", path}, &out, &errBuf); code != 1 {
			t.Errorf("%s: exit %d, want 1 (stderr: %s)", name, code, errBuf.String())
		}
	}
}

func TestVerifyMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("verus_epochs_total").Add(12)
	reg.Gauge("verus_window_pkts").Set(30)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(f, reg); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"verify-metrics", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "2 series") {
		t.Errorf("summary missing series count: %s", out.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.prom")
	if err := os.WriteFile(bad, []byte("metric_without_type 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"verify-metrics", bad}, &out, &errBuf); code != 1 {
		t.Errorf("malformed exposition: exit %d, want 1", code)
	}
}

func TestChromeConversion(t *testing.T) {
	in := writeSampleTrace(t)
	outPath := filepath.Join(t.TempDir(), "trace.json")
	var out, errBuf bytes.Buffer
	if code := run([]string{"chrome", in, outPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	// The epoch event becomes a "C" counter sample on the per-flow track.
	if !strings.HasPrefix(s, "[") || !strings.Contains(s, `"verus flow 0"`) || !strings.Contains(s, `"ph":"C"`) {
		t.Errorf("Chrome trace malformed:\n%s", s)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"verify-trace"},
		{"verify-trace", "a", "b"},
		{"chrome", "only-one-arg"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
