// Command verus-server runs the UDP receiver side of the Verus transport:
// it accepts data packets and acknowledges each one, printing goodput
// periodically. Pair it with verus-client.
//
// -debug-addr starts an HTTP introspection server: Prometheus text
// exposition of the receiver's live counters at /metrics, and the standard
// net/http/pprof handlers under /debug/pprof/.
//
// Usage:
//
//	verus-server -listen :9000 [-debug-addr 127.0.0.1:6060]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP listen address")
	interval := flag.Duration("report", 2*time.Second, "stats report interval")
	debugAddr := flag.String("debug-addr", "", "serve Prometheus /metrics and /debug/pprof on this HTTP address (empty disables)")
	flag.Parse()

	r, err := transport.NewReceiver(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("verus-server listening on %s\n", r.Addr())

	if *debugAddr != "" {
		registry := obs.NewRegistry()
		r.Observe(obs.NewObserver(nil, registry), 0, 0)
		// net/http/pprof registered itself on the default mux at import;
		// /metrics joins it there.
		http.Handle("/metrics", obs.MetricsHandler(registry))
		go func() {
			fmt.Printf("debug server (pprof + /metrics) on http://%s\n", *debugAddr)
			log.Fatal(http.ListenAndServe(*debugAddr, nil))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	var lastBytes int64
	for {
		select {
		case <-ticker.C:
			st := r.Stats()
			rate := float64(st.Bytes-lastBytes) * 8 / interval.Seconds() / 1e6
			lastBytes = st.Bytes
			fmt.Printf("rx: %d pkts (%d unique), %.2f Mbps current, %.2f Mbps mean\n",
				st.Packets, st.UniquePackets, rate, st.MeanMbps())
		case <-sig:
			st := r.Stats()
			fmt.Printf("final: %d pkts, %d bytes, %.2f Mbps mean\n", st.Packets, st.Bytes, st.MeanMbps())
			return
		}
	}
}
